// go vet -vettool unit-checker protocol.
//
// The vet driver probes its tool three ways before handing it work:
//
//	geolint -V=full        → one-line version + content hash (cache key)
//	geolint -flags         → JSON description of supported flags
//	geolint <unit>.cfg     → analyze one package unit
//
// The .cfg file is a JSON snapshot of one package's build: source
// files, the import map, and the export-data file of every dependency
// (already compiled by the driver). Type information therefore comes
// from compiler export data — no source re-checking — which is what
// makes the vettool path fast and incremental. This mirrors
// golang.org/x/tools/go/analysis/unitchecker on the standard library
// alone; geolint exchanges no facts, so the vetx output is a stub.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// vetProtocol reports whether the argument list is a vet-driver
// invocation rather than a standalone run.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-V" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// vetConfig is the driver's per-package unit description (the subset
// of fields geolint consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMain(args []string, stdout, stderr *os.File) int {
	var cfgFile string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			return printVersion(stdout, stderr)
		case a == "-flags":
			// geolint needs no tool-specific flags.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(a, ".cfg"):
			cfgFile = a
		}
	}
	if cfgFile == "" {
		fmt.Fprintln(stderr, "geolint: vet protocol invocation without a .cfg file")
		return 2
	}
	return vetUnit(cfgFile, stderr)
}

// printVersion emits the "name version ... buildID=..." line the
// driver hashes into its action cache key.
func printVersion(stdout, stderr *os.File) int {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
	return 0
}

func vetUnit(cfgFile string, stderr *os.File) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "geolint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, stderr)
			}
			fmt.Fprintln(stderr, "geolint:", err)
			return 2
		}
		files = append(files, f)
	}

	// Dependencies arrive as compiler export data: ImportMap resolves
	// import paths to canonical package paths, PackageFile locates
	// each package's export file.
	compImp := importer.ForCompiler(fset, compilerOf(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("geolint: no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("geolint: could not resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compilerOf(cfg), goarch()),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkgPath := strings.TrimSuffix(cfg.ImportPath, "_test")
	tpkg, err := tconf.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, stderr)
		}
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}

	exit := writeVetx(cfg, stderr)
	if exit != 0 || cfg.VetxOnly {
		return exit
	}
	pkg := &load.Package{
		PkgPath: tpkg.Path(), Dir: cfg.Dir, Fset: fset,
		Files: files, Types: tpkg, TypesInfo: info,
	}
	diags := lint.Run([]*load.Package{pkg})
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the (empty) facts output the driver caches.
func writeVetx(cfg vetConfig, stderr *os.File) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte("geolint-no-facts\n"), 0o666); err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	return 0
}

func compilerOf(cfg vetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
