// Command geobench measures the receiver pipeline's performance
// envelope and emits a machine-readable report (BENCH_geosphere.json
// at the repo root) for tracking across commits. It covers the
// scenarios the prepared-channel cache was built for:
//
//   - link-run/static-trace/{cached,cold}: the full frame pipeline on
//     a frequency-selective, time-invariant channel (the trace-replay
//     regime) with the per-worker preparation cache on and off.
//   - link-run/rayleigh/cached: per-frame redrawn channels, where
//     every preparation is a refill — the cache's worst case.
//   - link-run/kappa-sweep/{sphere,adaptive}: the κ²-swept static
//     trace (subcarrier conditioning ramped 0→55 dB) decoded all-sphere
//     and with the condition-adaptive ZF/K-best/sphere scheduler; the
//     pair's ratio is the scheduler's headline speedup, recorded with
//     its packet-error-rate delta and tier mix under the top-level
//     "adaptive" key.
//   - detect/geosphere-qam64-4x4: per-detection cost of the headline
//     decoder.
//   - prepare/{hit,refill}: the cached Prepare fast path and the
//     steady-state refactorization it avoids.
//
// Timings come from testing.Benchmark (so ns/op, B/op and allocs/op
// follow `go test -bench` semantics); cache hit rates come from a
// separate instrumented run with an obs.StatsRecorder attached.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/units"
)

// Metrics is one scenario's measured numbers. NsPerFrame and
// NsPerDetect are derived views of NsPerOp for the scenarios where an
// op spans several frames or is exactly one detection.
type Metrics struct {
	NsPerOp       float64 `json:"ns_per_op"`
	NsPerFrame    float64 `json:"ns_per_frame,omitempty"`
	NsPerDetect   float64 `json:"ns_per_detect,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	PrepareHits   int64   `json:"prepare_hits,omitempty"`
	PrepareMisses int64   `json:"prepare_misses,omitempty"`
	CacheHitRate  float64 `json:"cache_hit_rate,omitempty"`
}

// Scenario pairs a stable name with its metrics and a human-readable
// configuration string.
type Scenario struct {
	Name   string `json:"name"`
	Config string `json:"config"`
	Metrics
}

// AdaptiveReport is the condition-adaptive scheduler's headline record
// on the κ²-swept static trace: benchmarked speedup of the adaptive
// run over the all-sphere baseline, the packet-error-rate cost of that
// speedup, and the tier mix that produced it.
type AdaptiveReport struct {
	Config          string  `json:"config"`
	SpeedupVsSphere float64 `json:"speedup_vs_sphere"`
	PERSphere       float64 `json:"per_sphere"`
	PERAdaptive     float64 `json:"per_adaptive"`
	PERDelta        float64 `json:"per_delta"`
	SchedZF         int64   `json:"sched_zf"`
	SchedKBest      int64   `json:"sched_kbest"`
	SchedSphere     int64   `json:"sched_sphere"`
	GatePassRate    float64 `json:"gate_pass_rate"`
}

// Report is the BENCH_geosphere.json schema. Baseline carries the
// pre-optimization numbers the current scenarios are compared against;
// it is fixed at generation time, not re-measured. Extra holds every
// top-level key of the previous report that geobench does not own —
// records other tools (cmd/geoload's "serve" block, future additions)
// maintain under the same file. They are carried across regenerations
// verbatim so the tools can share one trajectory file without geobench
// needing to know each key.
type Report struct {
	Schema    string                     `json:"schema"`
	Baseline  map[string]Metrics         `json:"baseline"`
	BaselineA map[string]string          `json:"baseline_annotations"`
	Scenarios []Scenario                 `json:"scenarios"`
	Adaptive  *AdaptiveReport            `json:"adaptive,omitempty"`
	Extra     map[string]json.RawMessage `json:"-"`
}

// ownedReportKeys are the top-level JSON keys declared by Report
// itself; any other key found when parsing a previous report is
// foreign and lands in Extra.
func ownedReportKeys() map[string]bool {
	keys := make(map[string]bool)
	t := reflect.TypeOf(Report{})
	for i := 0; i < t.NumField(); i++ {
		name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if name != "" && name != "-" {
			keys[name] = true
		}
	}
	return keys
}

// UnmarshalJSON parses the owned fields and stashes every unknown
// top-level key in Extra, byte for byte.
func (r *Report) UnmarshalJSON(buf []byte) error {
	type bare Report // no methods: avoids recursing into this Unmarshal
	if err := json.Unmarshal(buf, (*bare)(r)); err != nil {
		return err
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(buf, &all); err != nil {
		return err
	}
	owned := ownedReportKeys()
	for k := range all {
		if owned[k] {
			delete(all, k)
		}
	}
	if len(all) > 0 {
		r.Extra = all
	}
	return nil
}

// MarshalJSON emits the owned fields in declaration order followed by
// the carried foreign keys in sorted order.
func (r *Report) MarshalJSON() ([]byte, error) {
	type bare Report
	buf, err := json.Marshal((*bare)(r))
	if err != nil || len(r.Extra) == 0 {
		return buf, err
	}
	keys := make([]string, 0, len(r.Extra))
	for k := range r.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.Write(buf[:len(buf)-1]) // reopen the object: drop the closing brace
	for _, k := range keys {
		name, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.WriteByte(',')
		b.Write(name)
		b.WriteByte(':')
		b.Write(r.Extra[k])
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// preCacheBaseline is the static-trace link scenario measured at the
// commit before the prepared-channel cache and zero-alloc QR
// workspaces landed (three runs averaged), plus the fresh QR
// preparation cost of the same commit. These are the reference points
// for the ns/frame and allocs/op regression gates.
func preCacheBaseline() (map[string]Metrics, map[string]string) {
	return map[string]Metrics{
			"link-run/static-trace": {
				NsPerOp:     3675480,
				NsPerFrame:  459435,
				BytesPerOp:  1263417,
				AllocsPerOp: 8708,
			},
			"prepare/fresh-qr": {
				NsPerOp:     1108,
				BytesPerOp:  1184,
				AllocsPerOp: 10,
			},
		}, map[string]string{
			"commit": "83729ea",
			"note":   "pipeline before per-worker preparation caching; every frame refactorized all 48 subcarriers and rebuilt detector + Viterbi state",
		}
}

// staticTrace draws the benchmark's frequency-selective, time-
// invariant channel set: one 4×4 Rayleigh matrix per data subcarrier,
// shared by every frame of a run.
func staticTrace() []*cmplxmat.Matrix {
	src := rng.New(7)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = channel.Rayleigh(src, 4, 4)
	}
	return hs
}

const linkFrames = 8

// linkRunConfig is the canonical static-channel-trace configuration:
// 4×4 16-QAM rate-1/2, one OFDM symbol per frame so preparation cost
// is not drowned by payload processing.
func linkRunConfig(cold bool) link.RunConfig {
	return link.RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 1, Frames: linkFrames,
		SNRdB: 24, Seed: 2014, Workers: 1,
		NoPrepCache: cold,
	}
}

// kappaSweepMaxdB is the top of the κ² ramp: the sweep spans
// well-conditioned subcarriers (where the gate and the sphere are both
// cheap) through the explosion-prone tail (κ̂² past the K-best cut,
// where an unbounded sphere search costs hundreds of microseconds per
// vector).
const kappaSweepMaxdB = 55

// kappaSweepTrace draws the adaptive benchmark's static trace: one 4×4
// channel per data subcarrier with the exact squared condition number
// ramped linearly from 0 dB to kappaSweepMaxdB across the band.
func kappaSweepTrace() ([]*cmplxmat.Matrix, error) {
	src := rng.New(77)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		k2 := units.DB(kappaSweepMaxdB * float64(i) / float64(len(hs)-1))
		h, err := channel.Conditioned(src, 4, 4, k2)
		if err != nil {
			return nil, err
		}
		hs[i] = h
	}
	return hs, nil
}

// kappaFrames sizes the κ²-swept runs: long enough to amortize the
// adaptive run's one-time per-run costs (scheduler construction,
// K-best factor preparation on the tail subcarriers) the way a real
// trace-replay session does.
const kappaFrames = 30

// kappaRunConfig is the κ²-swept scenario configuration: the canonical
// link setup with two OFDM symbols per frame (so detection, the cost
// the scheduler changes, dominates preparation and frame overhead) and
// the default-calibrated adaptive scheduler on or off.
func kappaRunConfig(adaptive bool) link.RunConfig {
	return link.RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 2, Frames: kappaFrames,
		SNRdB: 24, Seed: 2014, Workers: 1,
		AdaptiveDetect: adaptive,
	}
}

// adaptivePERFrames sizes the error-rate comparison runs: long enough
// for a stable per-stream PER on the sweep, short enough to keep the
// report generation quick.
const adaptivePERFrames = 60

// measureAdaptive runs the κ²-swept trace all-sphere and adaptive with
// an instrumented recorder and fills the error-rate and tier-mix half
// of the AdaptiveReport; the benchmarked speedup is filled in by run()
// from the scenario timings.
func measureAdaptive(newSource func() link.ChannelSource) (*AdaptiveReport, error) {
	runPER := func(adaptive bool) (float64, obs.AdaptiveSnapshot, error) {
		cfg := kappaRunConfig(adaptive)
		cfg.Frames = adaptivePERFrames
		rec := obs.NewStatsRecorder()
		cfg.Recorder = rec
		m, err := link.Run(cfg, newSource(), sim.GeosphereFactory)
		if err != nil {
			return 0, obs.AdaptiveSnapshot{}, err
		}
		return m.PerStreamFER, rec.Snapshot().Frames.Adaptive, nil
	}
	perSphere, _, err := runPER(false)
	if err != nil {
		return nil, err
	}
	perAdaptive, a, err := runPER(true)
	if err != nil {
		return nil, err
	}
	rep := &AdaptiveReport{
		Config: fmt.Sprintf("4x4 16-QAM rate-1/2, 2 OFDM symbols, %d frames, SNR 24 dB, κ² ramp 0-%g dB over %d subcarriers, default policy",
			adaptivePERFrames, float64(kappaSweepMaxdB), ofdm.NumData),
		PERSphere:   perSphere,
		PERAdaptive: perAdaptive,
		PERDelta:    perAdaptive - perSphere,
		SchedZF:     a.SchedZF,
		SchedKBest:  a.SchedKBest,
		SchedSphere: a.SchedSphere,
	}
	if vectors := a.GatePass + a.KBestFallbacks + a.SphereFallbacks; vectors > 0 {
		rep.GatePassRate = float64(a.GatePass) / float64(vectors)
	}
	return rep, nil
}

// benchLink times link.Run over the given source builder and collects
// the run's preparation-cache counters from an instrumented pass.
func benchLink(cfg link.RunConfig, newSource func() link.ChannelSource) (Metrics, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := link.Run(cfg, newSource(), sim.GeosphereFactory)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			if m.Frames != cfg.Frames {
				runErr = fmt.Errorf("ran %d frames, want %d", m.Frames, cfg.Frames)
				b.Fatal(runErr)
			}
		}
	})
	if runErr != nil {
		return Metrics{}, runErr
	}
	rec := obs.NewStatsRecorder()
	icfg := cfg
	icfg.Recorder = rec
	if _, err := link.Run(icfg, newSource(), sim.GeosphereFactory); err != nil {
		return Metrics{}, err
	}
	snap := rec.Snapshot()
	m := Metrics{
		NsPerOp:       float64(res.NsPerOp()),
		NsPerFrame:    float64(res.NsPerOp()) / float64(cfg.Frames),
		BytesPerOp:    res.AllocedBytesPerOp(),
		AllocsPerOp:   res.AllocsPerOp(),
		PrepareHits:   snap.Frames.PrepareHits,
		PrepareMisses: snap.Frames.PrepareMisses,
	}
	if total := m.PrepareHits + m.PrepareMisses; total > 0 {
		m.CacheHitRate = float64(m.PrepareHits) / float64(total)
	}
	return m, nil
}

// benchDetect times a single Geosphere detection at the paper's
// headline 4×4 64-QAM operating point over a pool of received vectors.
func benchDetect() (Metrics, error) {
	src := rng.New(1)
	cons := constellation.QAM64
	det := core.NewGeosphere(cons)
	h := channel.Rayleigh(src, 4, 4)
	if err := det.Prepare(h); err != nil {
		return Metrics{}, err
	}
	const pool = 256
	noiseVar := channel.NoiseVarForSNRdB(25)
	ys := make([][]complex128, pool)
	x := make([]complex128, 4)
	for i := range ys {
		for k := range x {
			x[k] = cons.PointIndex(src.Intn(cons.Size()))
		}
		ys[i] = channel.Transmit(nil, src, h, x, noiseVar)
	}
	dst := make([]int, 4)
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(dst, ys[i%pool]); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
	})
	if runErr != nil {
		return Metrics{}, runErr
	}
	return Metrics{
		NsPerOp:     float64(res.NsPerOp()),
		NsPerDetect: float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// benchPrepare times the detector-facing Prepare call on its two
// steady-state paths: hit (channel unchanged since the last call) and
// refill (alternating between two same-shape channels, so every call
// refactorizes into existing workspace).
func benchPrepare(refill bool) (Metrics, error) {
	src := rng.New(3)
	det := core.NewGeosphere(constellation.QAM64)
	h1 := channel.Rayleigh(src, 4, 4)
	h2 := channel.Rayleigh(src, 4, 4)
	for _, h := range []*cmplxmat.Matrix{h1, h2, h1} {
		if err := det.Prepare(h); err != nil {
			return Metrics{}, err
		}
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		h := h1
		for i := 0; i < b.N; i++ {
			if refill {
				if h == h1 {
					h = h2
				} else {
					h = h1
				}
			}
			if err := det.Prepare(h); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
	})
	if runErr != nil {
		return Metrics{}, runErr
	}
	return Metrics{
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// run measures every scenario and assembles the report.
func run() (*Report, error) {
	hs := staticTrace()
	staticSource := func() link.ChannelSource {
		s, err := link.NewStaticSubcarrierSource(hs)
		if err != nil {
			panic(err)
		}
		return s
	}
	rayleighSource := func() link.ChannelSource {
		s, err := link.NewRayleighSource(rng.New(7), 4, 4)
		if err != nil {
			panic(err)
		}
		return s
	}
	khs, err := kappaSweepTrace()
	if err != nil {
		return nil, err
	}
	kappaSource := func() link.ChannelSource {
		s, err := link.NewStaticSubcarrierSource(khs)
		if err != nil {
			panic(err)
		}
		return s
	}
	linkDesc := fmt.Sprintf("4x4 16-QAM rate-1/2, 1 OFDM symbol, %d frames, SNR 24 dB, workers 1", linkFrames)
	kappaDesc := fmt.Sprintf("4x4 16-QAM rate-1/2, 2 OFDM symbols, %d frames, SNR 24 dB, κ² ramp 0-%g dB static trace", kappaFrames, float64(kappaSweepMaxdB))
	scenarios := []struct {
		name, config string
		measure      func() (Metrics, error)
	}{
		{"link-run/static-trace/cached", linkDesc + ", static per-subcarrier trace, prep cache on",
			func() (Metrics, error) { return benchLink(linkRunConfig(false), staticSource) }},
		{"link-run/static-trace/cold", linkDesc + ", static per-subcarrier trace, prep cache off",
			func() (Metrics, error) { return benchLink(linkRunConfig(true), staticSource) }},
		{"link-run/rayleigh/cached", linkDesc + ", fresh Rayleigh channel per frame, prep cache on",
			func() (Metrics, error) { return benchLink(linkRunConfig(false), rayleighSource) }},
		{"link-run/kappa-sweep/sphere", kappaDesc + ", all-sphere baseline",
			func() (Metrics, error) { return benchLink(kappaRunConfig(false), kappaSource) }},
		{"link-run/kappa-sweep/adaptive", kappaDesc + ", condition-adaptive ZF/K-best/sphere scheduler",
			func() (Metrics, error) { return benchLink(kappaRunConfig(true), kappaSource) }},
		{"detect/geosphere-qam64-4x4", "Geosphere 4x4 64-QAM at 25 dB, prepared channel",
			benchDetect},
		{"prepare/hit", "Geosphere Prepare, channel unchanged (cache hit fast path)",
			func() (Metrics, error) { return benchPrepare(false) }},
		{"prepare/refill", "Geosphere Prepare, alternating channels (in-place refactorization)",
			func() (Metrics, error) { return benchPrepare(true) }},
	}
	base, notes := preCacheBaseline()
	rep := &Report{
		Schema:    "geobench/v1",
		Baseline:  base,
		BaselineA: notes,
	}
	for _, s := range scenarios {
		fmt.Fprintf(os.Stderr, "geobench: %s\n", s.name)
		m, err := s.measure()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, Scenario{Name: s.name, Config: s.config, Metrics: m})
	}
	fmt.Fprintln(os.Stderr, "geobench: adaptive error-rate comparison")
	ad, err := measureAdaptive(kappaSource)
	if err != nil {
		return nil, fmt.Errorf("adaptive comparison: %w", err)
	}
	var sphNs, adNs float64
	for _, s := range rep.Scenarios {
		switch s.Name {
		case "link-run/kappa-sweep/sphere":
			sphNs = s.NsPerFrame
		case "link-run/kappa-sweep/adaptive":
			adNs = s.NsPerFrame
		}
	}
	if sphNs > 0 && adNs > 0 {
		ad.SpeedupVsSphere = sphNs / adNs
	}
	rep.Adaptive = ad
	return rep, nil
}

// regressionTolerance is the generous headroom for shared-runner
// noise: a scenario fails the gate only when its per-frame cost
// exceeds the previously recorded value by more than 25%.
const regressionTolerance = 1.25

// readPrevious parses the report already at path, if any. A missing or
// unparseable file (first run, schema migration) just disables the
// regression gate.
func readPrevious(path string) *Report {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil || rep.Schema != "geobench/v1" {
		return nil
	}
	return &rep
}

// regressions compares every frame-timed scenario of the new report
// against the last recorded one and describes each >25% slowdown.
func regressions(prev, cur *Report) []string {
	if prev == nil {
		return nil
	}
	old := make(map[string]Metrics, len(prev.Scenarios))
	for _, s := range prev.Scenarios {
		old[s.Name] = s.Metrics
	}
	var regs []string
	for _, s := range cur.Scenarios {
		p, ok := old[s.Name]
		if !ok || p.NsPerFrame <= 0 || s.NsPerFrame <= 0 {
			continue
		}
		if s.NsPerFrame > regressionTolerance*p.NsPerFrame {
			regs = append(regs, fmt.Sprintf("%s: %.0f ns/frame vs %.0f recorded (beyond the %.0f%% tolerance)",
				s.Name, s.NsPerFrame, p.NsPerFrame, 100*(regressionTolerance-1)))
		}
	}
	return regs
}

func main() {
	out := flag.String("o", "BENCH_geosphere.json", "output path for the JSON report")
	flag.Parse()
	prev := readPrevious(*out)
	rep, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
		os.Exit(1)
	}
	if prev != nil {
		rep.Extra = prev.Extra
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("geobench: wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
	for _, s := range rep.Scenarios {
		line := fmt.Sprintf("  %-32s %12.0f ns/op %8d allocs/op", s.Name, s.NsPerOp, s.AllocsPerOp)
		if s.NsPerFrame > 0 {
			line += fmt.Sprintf(" %10.0f ns/frame", s.NsPerFrame)
		}
		if s.PrepareHits+s.PrepareMisses > 0 {
			line += fmt.Sprintf(" %5.1f%% cache hits", 100*s.CacheHitRate)
		}
		fmt.Println(line)
	}
	if ad := rep.Adaptive; ad != nil {
		fmt.Printf("  adaptive: %.2fx vs sphere, PER %+.4f delta, tiers zf/kbest/sphere %d/%d/%d, gate %.1f%%\n",
			ad.SpeedupVsSphere, ad.PERDelta, ad.SchedZF, ad.SchedKBest, ad.SchedSphere, 100*ad.GatePassRate)
	}
	// The report is written either way (the new numbers are what you
	// need to diagnose the slowdown); the exit status is what makes
	// `make bench` fail loudly on a regression.
	if regs := regressions(prev, rep); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "geobench: REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
}
