// Command geosim regenerates the tables and figures of the Geosphere
// paper's evaluation (§5) from the reproduction's simulators.
//
// Usage:
//
//	geosim -experiment fig11            # one experiment
//	geosim -experiment all              # everything (slow)
//	geosim -experiment fig15a -quick    # reduced-size smoke run
//	geosim -list                        # show experiment ids
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list), or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		quick      = flag.Bool("quick", false, "use reduced sizes (fast smoke run)")
		seed       = flag.Int64("seed", 0, "override the experiment seed (0 keeps the default)")
		frames     = flag.Int("frames", 0, "override frames per measurement point (0 keeps the default)")
		workers    = flag.Int("workers", 0, "total worker goroutine budget shared across points and frames (0 = GOMAXPROCS); results are identical for every value")
	)
	flag.Parse()

	if *list {
		for _, n := range sim.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "geosim: -experiment is required (try -list)")
		os.Exit(2)
	}
	opts := sim.DefaultOptions()
	if *quick {
		opts = sim.QuickOptions()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *frames > 0 {
		opts.Frames = *frames
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "geosim: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *workers > 0 {
		opts.Workers = *workers
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = sim.ExperimentNames()
	}
	for _, name := range names {
		fn, ok := sim.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "geosim: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		table, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geosim: %s: %v\n", name, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
