// Command geosim regenerates the tables and figures of the Geosphere
// paper's evaluation (§5) from the reproduction's simulators.
//
// Usage:
//
//	geosim -experiment fig11            # one experiment
//	geosim -experiment all              # everything (slow)
//	geosim -experiment fig15a -quick    # reduced-size smoke run
//	geosim -list                        # show experiment ids
//
// Observability flags:
//
//	-stats text    # dump aggregated decoder/link statistics at exit
//	-stats json    # same, as one JSON object (schema pinned by tests)
//	-progress      # periodic progress lines on stderr
//	-pprof ADDR    # serve net/http/pprof on ADDR (e.g. localhost:6060)
//
// Every run is deterministic for a given -seed; the observability
// flags never change the experiment results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected so tests can drive the
// command end to end. It returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "", "experiment id (see -list), or 'all'")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		quick      = fs.Bool("quick", false, "use reduced sizes (fast smoke run)")
		seed       = fs.Int64("seed", 0, "override the experiment seed (0 keeps the default)")
		frames     = fs.Int("frames", 0, "override frames per measurement point (0 keeps the default)")
		workers    = fs.Int("workers", 0, "total worker goroutine budget shared across points and frames (0 = GOMAXPROCS); results are identical for every value")
		stats      = fs.String("stats", "", "dump run statistics at exit: 'text' or 'json'")
		progress   = fs.Bool("progress", false, "print periodic progress lines on stderr")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, n := range sim.ExperimentNames() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	if *experiment == "" {
		fmt.Fprintln(stderr, "geosim: -experiment is required (try -list)")
		return 2
	}
	if *stats != "" && *stats != "text" && *stats != "json" {
		fmt.Fprintf(stderr, "geosim: -stats must be 'text' or 'json', got %q\n", *stats)
		return 2
	}
	opts := sim.DefaultOptions()
	if *quick {
		opts = sim.QuickOptions()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *frames > 0 {
		opts.Frames = *frames
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "geosim: -workers must be >= 0, got %d\n", *workers)
		return 2
	}
	if *workers > 0 {
		opts.Workers = *workers
	}

	// Observability is side-channel only: any combination of these
	// recorders leaves the printed tables byte-identical.
	var recorders obs.Multi
	var statsRec *obs.StatsRecorder
	if *stats != "" {
		statsRec = obs.NewStatsRecorder()
		recorders = append(recorders, statsRec)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(stderr, 2*time.Second)
		recorders = append(recorders, prog)
	}
	switch len(recorders) {
	case 0:
	case 1:
		opts.Recorder = recorders[0]
	default:
		opts.Recorder = recorders
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(stderr, "geosim: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "geosim: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = sim.ExperimentNames()
	}
	for _, name := range names {
		fn, ok := sim.Experiments[name]
		if !ok {
			fmt.Fprintf(stderr, "geosim: unknown experiment %q (try -list)\n", name)
			return 2
		}
		start := time.Now()
		table, err := fn(opts)
		if err != nil {
			fmt.Fprintf(stderr, "geosim: %s: %v\n", name, err)
			return 1
		}
		table.Fprint(stdout)
		fmt.Fprintf(stdout, "  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if prog != nil {
		prog.Stop()
	}
	if statsRec != nil {
		if err := dumpStats(stdout, statsRec.Snapshot(), *stats); err != nil {
			fmt.Fprintf(stderr, "geosim: -stats: %v\n", err)
			return 1
		}
	}
	return 0
}

// dumpStats writes the final snapshot in the requested format. The
// JSON field set is part of the command's interface and pinned by
// TestStatsJSONSchema.
func dumpStats(w io.Writer, snap obs.Snapshot, format string) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	snap.WriteText(w)
	return nil
}
