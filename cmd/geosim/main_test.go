package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// populatedSnapshot builds a snapshot with every section non-empty so
// the schema walk below sees all fields that -stats json can emit.
func populatedSnapshot() obs.Snapshot {
	r := obs.NewStatsRecorder()
	r.RecordDetect(obs.DetectSample{
		Detector: "Geosphere",
		Levels: []obs.LevelSample{
			{Nodes: 3, PEDCalcs: 4, BoundChecks: 5, Prunes: 1},
			{Nodes: 2, PEDCalcs: 2, BoundChecks: 3, Prunes: 0},
		},
	})
	r.RecordDecode(obs.DecodeSample{Stream: 0, PathMetric: 0.93, OK: true})
	r.RecordDecode(obs.DecodeSample{Stream: 1, PathMetric: 0.12, OK: false})
	r.RecordFrame(obs.FrameSample{Frame: 0, Worker: 0, Duration: 3 * time.Millisecond, OK: true, Streams: 2, StreamErrors: 1})
	r.RecordPoint(obs.PointSample{
		Label: "fig11/2x2/15", Detector: "Geosphere", Constellation: "16-QAM",
		SNRdB: 15, Frames: 60, FER: 0.1, NetMbps: 33.6, PEDCalcs: 1234, VisitedNodes: 987,
	})
	return r.Snapshot()
}

// keyPaths returns every JSON key path in v, sorted; array elements
// collapse to "[]" so the schema is independent of counts.
func keyPaths(v any, prefix string, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			keyPaths(sub, p, out)
		}
	case []any:
		for _, sub := range x {
			keyPaths(sub, prefix+"[]", out)
		}
	}
}

// TestStatsJSONSchema pins the field set of `geosim -stats json`: the
// output is machine-readable and downstream scripts depend on these
// key paths, so adding fields requires -update and a changelog note,
// and removing or renaming fields should fail loudly here.
func TestStatsJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := dumpStats(&buf, populatedSnapshot(), "json"); err != nil {
		t.Fatalf("dumpStats: %v", err)
	}
	var parsed any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("-stats json output is not valid JSON: %v", err)
	}
	paths := map[string]bool{}
	keyPaths(parsed, "", paths)
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"

	golden := filepath.Join("testdata", "stats_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("-stats json schema changed.\ngot:\n%s\nwant:\n%s\n(run go test ./cmd/geosim -update if intentional)", got, want)
	}
}

// TestStatsTextNonEmpty sanity-checks the human-readable dump.
func TestStatsTextNonEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := dumpStats(&buf, populatedSnapshot(), "text"); err != nil {
		t.Fatalf("dumpStats: %v", err)
	}
	for _, want := range []string{"detect:", "decode:", "frames:", "points:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		code int
		errs string
	}{
		{"no experiment", nil, 2, "-experiment is required"},
		{"bad stats mode", []string{"-experiment", "fig12", "-stats", "xml"}, 2, "-stats must be"},
		{"negative workers", []string{"-experiment", "fig12", "-workers", "-1"}, 2, "-workers must be"},
		{"unknown experiment", []string{"-experiment", "nope"}, 2, "unknown experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := run(tc.argv, &out, &errw); code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.argv, code, tc.code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.errs) {
				t.Errorf("stderr %q does not mention %q", errw.String(), tc.errs)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "fig11") {
		t.Errorf("-list output missing fig11:\n%s", out.String())
	}
}

// TestRunStatsJSON drives the command end to end on the smallest
// experiment and checks the trailing JSON object parses and carries
// the top-level sections.
func TestRunStatsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a (reduced) experiment")
	}
	var out, errw bytes.Buffer
	code := run([]string{"-experiment", "fig12", "-quick", "-frames", "2", "-stats", "json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errw.String())
	}
	idx := strings.Index(out.String(), "\n{")
	if idx < 0 {
		t.Fatalf("no JSON object after tables:\n%s", out.String())
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(out.String()[idx:]), &snap); err != nil {
		t.Fatalf("trailing JSON: %v", err)
	}
	for _, k := range []string{"uptime_seconds", "detect", "decode", "frames", "workers", "points"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %q section; have %v", k, fmt.Sprint(snap))
		}
	}
}
