package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/serve"
)

func TestFirehoseSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-firehose", "-users", "6", "-frames", "2",
		"-shards", "2", "-queue", "8", "-symbols", "2", "-bits", "2",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Users != 6 || rep.FramesPerUser != 2 {
		t.Fatalf("config not echoed: %+v", rep)
	}
	if rep.FramesServed+rep.Dropped != 12 {
		t.Fatalf("served %d + dropped %d != 12", rep.FramesServed, rep.Dropped)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	if code := run([]string{"-bits", "3"}, &stdout, &stderr); code != 1 {
		t.Fatalf("odd bits exited %d, want 1", code)
	}
	if code := run([]string{"-na", "1", "-nc", "4"}, &stdout, &stderr); code != 1 {
		t.Fatalf("wide shape exited %d, want 1", code)
	}
}
