// Command geocell is the resident multi-user detection service: a
// long-running base-station process serving uplink frames for an
// unbounded population of user groups on a sharded pipeline with
// bounded queues, admission control, and Geosphere → K-best → ZF
// degradation under overload (see internal/serve).
//
// Two modes:
//
//   - Listener (default): serve HTTP on -listen. GET /healthz and
//     GET /stats expose liveness and the serving + pipeline counters;
//     POST /ingest?group=N&frames=M pushes frames through the
//     detector. The process runs until SIGINT/SIGTERM, then shuts
//     down gracefully (in-flight frames complete).
//
//   - Firehose (-firehose): replay a synthetic trace firehose through
//     the service in-process — -users concurrent simulated user
//     groups, -frames frames each — and print the load report
//     (p50/p99 frame latency, frames/sec, ladder-tier mix) as JSON.
//     This is the mode the load harness (cmd/geoload) and the
//     serve-bench CI job build on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/constellation"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geocell", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", "127.0.0.1:8443", "listener mode: HTTP address to serve on")
		bits      = fs.Int("bits", 4, "constellation bits per symbol (2, 4, 6, 8)")
		na        = fs.Int("na", 4, "AP antennas")
		nc        = fs.Int("nc", 2, "clients per user group")
		symbols   = fs.Int("symbols", 8, "OFDM symbols per frame")
		snr       = fs.Float64("snr", 25, "per-stream SNR in dB")
		seed      = fs.Int64("seed", 2014, "determinism root seed")
		shards    = fs.Int("shards", 8, "pipeline shards")
		queue     = fs.Int("queue", 64, "per-shard frame queue depth")
		batchMax  = fs.Int("batch", 16, "frames a shard drains and serves per wakeup")
		maxGroups = fs.Int("max-groups", 0, "resident user groups per shard (0 = footprint-sized default; second-chance eviction beyond)")
		kbestK    = fs.Int("kbest", 4, "K of the K-best degradation tier")
		kbestLoad = fs.Float64("kbest-load", 0.5, "queue occupancy above which frames degrade to K-best")
		zfLoad    = fs.Float64("zf-load", 0.85, "queue occupancy above which frames degrade to ZF")
		firehose  = fs.Bool("firehose", false, "firehose mode: replay a synthetic trace load and print the report")
		users     = fs.Int("users", 1000, "firehose mode: concurrent simulated user groups")
		frames    = fs.Int("frames", 4, "firehose mode: frames per user")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cons, err := constellation.ByBits(*bits)
	if err != nil {
		fmt.Fprintf(stderr, "geocell: %v\n", err)
		return 1
	}
	pipeline := obs.NewStatsRecorder()
	srv, err := serve.New(serve.Config{
		Cons:       cons,
		NA:         *na,
		NC:         *nc,
		NumSymbols: *symbols,
		SNRdB:      *snr,
		Seed:       *seed,
		Shards:     *shards,
		QueueDepth: *queue,
		BatchMax:   *batchMax,
		MaxGroups:  *maxGroups,
		KBestK:     *kbestK,
		KBestLoad:  *kbestLoad,
		ZFLoad:     *zfLoad,
		Recorder:   pipeline,
	})
	if err != nil {
		fmt.Fprintf(stderr, "geocell: %v\n", err)
		return 1
	}
	defer srv.Close()

	if *firehose {
		rep := serve.RunLoad(context.Background(), srv, serve.LoadConfig{
			Users:         *users,
			FramesPerUser: *frames,
		})
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "geocell: %v\n", err)
			return 1
		}
		return 0
	}

	return serveHTTP(srv, pipeline, *listen, stdout, stderr)
}

// serveHTTP runs the listener mode until SIGINT/SIGTERM, then shuts
// down gracefully.
func serveHTTP(srv *serve.Server, pipeline *obs.StatsRecorder, addr string, stdout, stderr io.Writer) int {
	hs := &http.Server{Addr: addr, Handler: serve.NewHandler(srv, pipeline)}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "geocell: serving on %s (%d shards, queue %d)\n",
		addr, srv.Config().Shards, srv.Config().QueueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "geocell: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "geocell: %v, shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "geocell: shutdown: %v\n", err)
		return 1
	}
	return 0
}
