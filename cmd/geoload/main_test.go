package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadRecordsPreserveBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_geosphere.json")
	// Pre-existing geobench content must survive untouched.
	seed := []byte(`{"schema": "geobench/v1", "results": [{"name": "uplink"}]}`)
	if err := os.WriteFile(path, seed, 0o644); err != nil {
		t.Fatal(err)
	}

	args := []string{
		"-users", "4", "-frames", "1", "-shards", "2", "-queue", "8",
		"-batch", "4", "-symbols", "2", "-bits", "2", "-label", "test", "-o", path,
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string          `json:"schema"`
		Results json.RawMessage `json:"results"`
		Serve   serveBlock      `json:"serve"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "geobench/v1" {
		t.Fatalf("geobench schema clobbered: %q", doc.Schema)
	}
	if !bytes.Contains(doc.Results, []byte("uplink")) {
		t.Fatalf("geobench results clobbered: %s", doc.Results)
	}
	if doc.Serve.Schema != serveSchema {
		t.Fatalf("serve schema %q", doc.Serve.Schema)
	}
	if len(doc.Serve.Records) != 1 {
		t.Fatalf("%d serve records, want 1", len(doc.Serve.Records))
	}
	rec := doc.Serve.Records[0]
	if rec.Label != "test" || rec.Config.Shards != 2 || rec.Report.Users != 4 {
		t.Fatalf("record mangled: %+v", rec)
	}
	if rec.Config.BatchMax != 4 {
		t.Fatalf("batch_max not stamped: %+v", rec.Config)
	}
	if rec.Report.FramesOffered != 4 {
		t.Fatalf("offered load not reported: %+v", rec.Report)
	}

	// A second run appends rather than replacing.
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("second run exit %d, stderr: %s", code, stderr.String())
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc.Serve = serveBlock{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Serve.Records) != 2 {
		t.Fatalf("%d serve records after second run, want 2", len(doc.Serve.Records))
	}
}

func TestLoadCreatesBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-users", "2", "-frames", "1", "-shards", "1", "-queue", "8",
		"-symbols", "2", "-bits", "2", "-o", path,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]serveBlock
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc["serve"].Records) != 1 {
		t.Fatalf("fresh file holds %d records, want 1", len(doc["serve"].Records))
	}
}
