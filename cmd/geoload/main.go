// Command geoload is the load harness for the geocell serving
// pipeline: it builds an in-process serve.Server, hammers it with
// -users concurrent simulated user groups (each submitting -frames
// frames, closed-loop with jittered exponential retry backoff by
// default, or open-loop at a fixed -rate of offered frames/sec),
// prints the resulting report, and records it under the "serve" key of
// BENCH_geosphere.json — alongside, and without disturbing, the
// batch-pipeline results that cmd/geobench maintains there.
//
//	go run ./cmd/geoload -users 10000 -frames 3 -o BENCH_geosphere.json
//	go run ./cmd/geoload -users 1000 -frames 10 -rate 5000   # open loop
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/constellation"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveBlock is the value stored under the "serve" key of
// BENCH_geosphere.json. Records accumulate across runs so trends stay
// visible; cmd/geobench carries the block verbatim when it rewrites
// the rest of the file.
type serveBlock struct {
	Schema  string        `json:"schema"`
	Records []serveRecord `json:"records"`
}

// serveRecord is one geoload run.
type serveRecord struct {
	Label  string           `json:"label,omitempty"`
	Config serveConfigStamp `json:"config"`
	Report serve.LoadReport `json:"report"`
}

// serveConfigStamp pins the service shape the report was measured on.
type serveConfigStamp struct {
	Constellation string  `json:"constellation"`
	NA            int     `json:"na"`
	NC            int     `json:"nc"`
	NumSymbols    int     `json:"num_symbols"`
	SNRdB         float64 `json:"snr_db"`
	Seed          int64   `json:"seed"`
	Shards        int     `json:"shards"`
	QueueDepth    int     `json:"queue_depth"`
	BatchMax      int     `json:"batch_max"`
	KBestLoad     float64 `json:"kbest_load"`
	ZFLoad        float64 `json:"zf_load"`
}

const serveSchema = "geoload/v1"

// maxRecords bounds the history kept in the bench file; older runs
// roll off the front.
const maxRecords = 32

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geoload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		users      = fs.Int("users", 10000, "concurrent simulated user groups")
		frames     = fs.Int("frames", 3, "frames per user")
		retries    = fs.Int("retries", 3, "retries per frame after an admission reject (closed loop)")
		backoff    = fs.Duration("backoff", 200*time.Microsecond, "base retry backoff; doubles per attempt with jitter")
		backoffMax = fs.Duration("backoff-max", 100*time.Millisecond, "cap on the exponential retry backoff")
		rate       = fs.Float64("rate", 0, "open-loop offered load in frames/sec across all users (0 = closed loop)")
		out        = fs.String("o", "", "bench file to update under the \"serve\" key (e.g. BENCH_geosphere.json); empty = print only")
		label      = fs.String("label", "", "optional record label (e.g. CI run id)")
		bits       = fs.Int("bits", 4, "constellation bits per symbol (2, 4, 6, 8)")
		na         = fs.Int("na", 4, "AP antennas")
		nc         = fs.Int("nc", 2, "clients per user group")
		symbols    = fs.Int("symbols", 8, "OFDM symbols per frame")
		snr        = fs.Float64("snr", 25, "per-stream SNR in dB")
		seed       = fs.Int64("seed", 2014, "determinism root seed")
		shards     = fs.Int("shards", 8, "pipeline shards")
		queue      = fs.Int("queue", 64, "per-shard frame queue depth")
		batchMax   = fs.Int("batch", 16, "frames a shard drains and serves per wakeup")
		maxGroups  = fs.Int("max-groups", 0, "resident user groups per shard (0 = footprint-sized default; second-chance eviction beyond)")
		kbestK     = fs.Int("kbest", 4, "K of the K-best degradation tier")
		kbestLoad  = fs.Float64("kbest-load", 0.5, "queue occupancy above which frames degrade to K-best")
		zfLoad     = fs.Float64("zf-load", 0.85, "queue occupancy above which frames degrade to ZF")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cons, err := constellation.ByBits(*bits)
	if err != nil {
		fmt.Fprintf(stderr, "geoload: %v\n", err)
		return 1
	}
	srv, err := serve.New(serve.Config{
		Cons:       cons,
		NA:         *na,
		NC:         *nc,
		NumSymbols: *symbols,
		SNRdB:      *snr,
		Seed:       *seed,
		Shards:     *shards,
		QueueDepth: *queue,
		BatchMax:   *batchMax,
		MaxGroups:  *maxGroups,
		KBestK:     *kbestK,
		KBestLoad:  *kbestLoad,
		ZFLoad:     *zfLoad,
		Recorder:   obs.NewStatsRecorder(),
	})
	if err != nil {
		fmt.Fprintf(stderr, "geoload: %v\n", err)
		return 1
	}

	fmt.Fprintf(stderr, "geoload: %d users x %d frames on %d shards (queue %d, batch %d)...\n",
		*users, *frames, *shards, *queue, *batchMax)
	rep := serve.RunLoad(context.Background(), srv, serve.LoadConfig{
		Users:         *users,
		FramesPerUser: *frames,
		Retries:       *retries,
		Backoff:       *backoff,
		BackoffMax:    *backoffMax,
		ArrivalRate:   *rate,
		Seed:          *seed,
	})
	srv.Close()

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "geoload: %v\n", err)
		return 1
	}

	if *out == "" {
		return 0
	}
	rec := serveRecord{
		Label: *label,
		Config: serveConfigStamp{
			Constellation: cons.Name(),
			NA:            *na,
			NC:            *nc,
			NumSymbols:    *symbols,
			SNRdB:         *snr,
			Seed:          *seed,
			Shards:        *shards,
			QueueDepth:    *queue,
			BatchMax:      *batchMax,
			KBestLoad:     *kbestLoad,
			ZFLoad:        *zfLoad,
		},
		Report: rep,
	}
	if err := appendRecord(*out, rec); err != nil {
		fmt.Fprintf(stderr, "geoload: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "geoload: recorded under %q in %s\n", "serve", *out)
	return 0
}

// appendRecord read-modify-writes the bench file: every top-level key
// other than "serve" (geobench's schema, results, environment, ...) is
// preserved byte-for-byte as raw JSON; the "serve" block gains rec.
func appendRecord(path string, rec serveRecord) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	var block serveBlock
	if raw, ok := doc["serve"]; ok {
		// A malformed block is replaced rather than fatal: the bench
		// file is advisory output, not input state we must trust.
		_ = json.Unmarshal(raw, &block)
	}
	block.Schema = serveSchema
	block.Records = append(block.Records, rec)
	if n := len(block.Records); n > maxRecords {
		block.Records = block.Records[n-maxRecords:]
	}
	raw, err := json.Marshal(block)
	if err != nil {
		return err
	}
	doc["serve"] = raw

	outRaw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(outRaw, '\n'), 0o644)
}
