package geosphere_test

import (
	"fmt"

	geosphere "repro"
)

// Example demonstrates the minimal detection round trip: prepare the
// detector with a channel matrix, then demultiplex received vectors.
func Example() {
	cons := geosphere.QAM16
	src := geosphere.NewSource(7)

	// Four single-antenna clients, four AP antennas.
	h := geosphere.NewRayleighChannel(src, 4, 4)
	det := geosphere.NewGeosphere(cons)
	if err := det.Prepare(h); err != nil {
		fmt.Println("prepare:", err)
		return
	}

	// Each client sends one constellation point; the AP hears the mix.
	sent := []int{3, 14, 7, 9}
	x := geosphere.Symbols(cons, sent)
	y := geosphere.Transmit(nil, src, h, x, geosphere.NoiseVarForSNRdB(25))

	got, err := det.Detect(nil, y)
	if err != nil {
		fmt.Println("detect:", err)
		return
	}
	fmt.Println(got)
	// Output: [3 14 7 9]
}

// ExampleKappa2dB shows the §5.1 conditioning metrics on a channel
// that zero-forcing handles badly.
func ExampleKappa2dB() {
	src := geosphere.NewSource(11)
	h, err := geosphere.NewCorrelatedChannel(src, 2, 2, 0.98, 0.98)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("poorly conditioned: κ² > 10 dB is %v, Λ > 5 dB is %v\n",
		geosphere.Kappa2dB(h) > 10, geosphere.LambdaDB(h) > 5)
	// Output: poorly conditioned: κ² > 10 dB is true, Λ > 5 dB is true
}

// ExampleNewETHSD contrasts the complexity of the two sphere decoders
// on one detection: identical answers and visited nodes, far fewer
// exact distance computations for Geosphere.
func ExampleNewETHSD() {
	cons := geosphere.QAM256
	src := geosphere.NewSource(5)
	h := geosphere.NewRayleighChannel(src, 4, 4)
	x := geosphere.Symbols(cons, []int{0, 100, 200, 255})
	y := geosphere.Transmit(nil, src, h, x, geosphere.NoiseVarForSNRdB(40))

	geo := geosphere.NewGeosphere(cons)
	eth := geosphere.NewETHSD(cons)
	for _, det := range []geosphere.Detector{geo, eth} {
		if err := det.Prepare(h); err != nil {
			fmt.Println(err)
			return
		}
		if _, err := det.Detect(nil, y); err != nil {
			fmt.Println(err)
			return
		}
	}
	gs, _ := geosphere.StatsOf(geo)
	es, _ := geosphere.StatsOf(eth)
	fmt.Printf("same nodes: %v; Geosphere needs fewer distance computations: %v\n",
		gs.VisitedNodes == es.VisitedNodes, gs.PEDCalcs < es.PEDCalcs)
	// Output: same nodes: true; Geosphere needs fewer distance computations: true
}
