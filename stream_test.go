package geosphere

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/link"
	"repro/internal/rng"
	"repro/internal/testbed"
)

// drawFrames replays the exact channel sequence the batch path sees:
// frames 0..n-1 drawn sequentially from the source.
func drawFrames(t *testing.T, src link.ChannelSource, n int) []UplinkFrame {
	t.Helper()
	frames := make([]UplinkFrame, n)
	for i := range frames {
		hs, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = UplinkFrame{Index: int64(i), Channels: hs}
	}
	return frames
}

// rayleighSource rebuilds the channel source MeasureUplinkRayleigh
// constructs internally for the given options.
func rayleighSource(t *testing.T, o UplinkOptions) link.ChannelSource {
	t.Helper()
	src, err := link.NewRayleighSource(rng.New(o.Seed+1), o.NA, o.NC)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// testbedSource rebuilds the channel source MeasureUplinkTestbed
// constructs internally for the given options.
func testbedSource(t *testing.T, o UplinkOptions) link.ChannelSource {
	t.Helper()
	tr, err := testbed.Generate(testbed.OfficePlan(), testbed.GenerateConfig{
		Seed:         o.Seed,
		NumClients:   o.NC,
		NumAntennas:  o.NA,
		LinksPerAP:   4,
		Realizations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := link.NewTraceSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func streamReceiver(t *testing.T, o UplinkOptions) *Receiver {
	t.Helper()
	r, err := NewReceiver(ReceiverOptions{
		Cons:         o.Cons,
		NumSymbols:   o.NumSymbols,
		SNRdB:        o.SNRdB,
		Seed:         o.Seed,
		NA:           o.NA,
		NC:           o.NC,
		Detector:     o.Detector,
		SNRJitterDB:  o.SNRJitterDB,
		EstimatedCSI: o.EstimatedCSI,
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStreamingMatchesBatch is the streaming-vs-batch conformance
// suite: for every measurement mode × channel source × worker count,
// the same frames fed through a Receiver (both the ProcessStream and
// the ProcessFrame paths) must aggregate to a byte-identical
// UplinkResult as the legacy batch entry points.
func TestStreamingMatchesBatch(t *testing.T) {
	zf := func(cons *Constellation, _ float64) Detector { return NewZF(cons) }
	modes := []struct {
		name string
		opts UplinkOptions
	}{
		{"geosphere", UplinkOptions{Cons: QAM16, NumSymbols: 2, Frames: 4, SNRdB: 28, Seed: 21, NA: 4, NC: 2}},
		{"estimated-csi", UplinkOptions{Cons: QAM16, NumSymbols: 2, Frames: 4, SNRdB: 28, Seed: 22, NA: 4, NC: 2, EstimatedCSI: true}},
		{"snr-jitter", UplinkOptions{Cons: QPSK, NumSymbols: 2, Frames: 4, SNRdB: 24, Seed: 23, NA: 4, NC: 2, SNRJitterDB: 3}},
		{"zf", UplinkOptions{Cons: QPSK, NumSymbols: 2, Frames: 4, SNRdB: 24, Seed: 24, NA: 4, NC: 2, Detector: zf}},
	}
	sources := []struct {
		name  string
		batch func(UplinkOptions) (UplinkResult, error)
		src   func(*testing.T, UplinkOptions) link.ChannelSource
	}{
		{"rayleigh", MeasureUplinkRayleigh, rayleighSource},
		{"testbed", MeasureUplinkTestbed, testbedSource},
	}
	for _, mode := range modes {
		for _, source := range sources {
			for _, workers := range []int{0, 3} {
				o := mode.opts
				o.Workers = workers
				t.Run(fmt.Sprintf("%s/%s/w%d", mode.name, source.name, workers), func(t *testing.T) {
					want, err := source.batch(o)
					if err != nil {
						t.Fatal(err)
					}

					// Path 1: ProcessStream over a frame channel.
					r := streamReceiver(t, o)
					frames := drawFrames(t, source.src(t, o), o.Frames)
					in := make(chan UplinkFrame)
					out := make(chan FrameOutcome, o.Frames)
					go func() {
						for _, f := range frames {
							in <- f
						}
						close(in)
					}()
					if err := r.ProcessStream(context.Background(), in, out); err != nil {
						t.Fatal(err)
					}
					close(out)
					var outs []FrameOutcome
					for fo := range out {
						if fo.Err != nil {
							t.Fatalf("frame %d: %v", fo.Frame, fo.Err)
						}
						outs = append(outs, fo)
					}
					if got := r.Aggregate(outs); got != want {
						t.Fatalf("ProcessStream diverged from batch:\n got %+v\nwant %+v", got, want)
					}
					r.Close()

					// Path 2: ProcessFrame, one call per frame, in reverse
					// submission order — outcomes depend only on the index.
					r = streamReceiver(t, o)
					defer r.Close()
					outs = outs[:0]
					for i := len(frames) - 1; i >= 0; i-- {
						fo, err := r.ProcessFrame(context.Background(), frames[i])
						if err != nil {
							t.Fatal(err)
						}
						outs = append(outs, fo)
					}
					if got := r.Aggregate(outs); got != want {
						t.Fatalf("ProcessFrame diverged from batch:\n got %+v\nwant %+v", got, want)
					}
				})
			}
		}
	}
}

// TestReceiverNarrowbandExpansion pins that the single-matrix frame
// form is exactly the 48-replica form.
func TestReceiverNarrowbandExpansion(t *testing.T) {
	o := UplinkOptions{Cons: QPSK, NumSymbols: 2, Frames: 1, SNRdB: 25, Seed: 31, NA: 4, NC: 2}
	hs, err := rayleighSource(t, o).Next()
	if err != nil {
		t.Fatal(err)
	}
	r := streamReceiver(t, o)
	defer r.Close()
	wide, err := r.ProcessFrame(context.Background(), UplinkFrame{Index: 0, Channels: hs})
	if err != nil {
		t.Fatal(err)
	}
	// The Rayleigh source is narrowband: all 48 entries are one matrix.
	narrow, err := r.ProcessFrame(context.Background(), UplinkFrame{Index: 0, Channels: hs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.SymbolErrors != wide.SymbolErrors || narrow.Symbols != wide.Symbols || narrow.Stats != wide.Stats {
		t.Fatalf("narrowband form diverged:\n %+v\n %+v", narrow, wide)
	}
}

// TestReceiverConcurrent hammers one Receiver from many goroutines —
// the race-detector test of the streaming API's concurrency contract —
// and checks every outcome is the deterministic function of its index.
func TestReceiverConcurrent(t *testing.T) {
	o := UplinkOptions{Cons: QPSK, NumSymbols: 2, SNRdB: 26, Seed: 41, NA: 4, NC: 2, Workers: 4}
	hs, err := rayleighSource(t, o).Next()
	if err != nil {
		t.Fatal(err)
	}
	r := streamReceiver(t, o)
	defer r.Close()

	const (
		submitters     = 8
		framesEach     = 6
		distinctFrames = 4 // indices collide across submitters on purpose
	)
	outs := make([][]FrameOutcome, submitters)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g] = make([]FrameOutcome, framesEach)
			for i := 0; i < framesEach; i++ {
				fi := int64((g + i) % distinctFrames)
				fo, err := r.ProcessFrame(context.Background(), UplinkFrame{Index: fi, Channels: hs})
				if err != nil {
					t.Errorf("goroutine %d frame %d: %v", g, fi, err)
					return
				}
				outs[g][i] = fo
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	byIndex := make(map[int64]FrameOutcome)
	for g := range outs {
		for _, fo := range outs[g] {
			ref, seen := byIndex[fo.Frame]
			if !seen {
				byIndex[fo.Frame] = fo
				continue
			}
			if fo.SymbolErrors != ref.SymbolErrors || fo.Symbols != ref.Symbols || fo.Stats != ref.Stats {
				t.Fatalf("frame %d nondeterministic under concurrency:\n %+v\n %+v", fo.Frame, fo, ref)
			}
		}
	}
	if len(byIndex) != distinctFrames {
		t.Fatalf("saw %d distinct frames, want %d", len(byIndex), distinctFrames)
	}
}

// TestProcessStreamBadFrameInBand pins the resident-service contract:
// one bad frame is reported in its outcome, and the stream continues.
func TestProcessStreamBadFrameInBand(t *testing.T) {
	o := UplinkOptions{Cons: QPSK, NumSymbols: 2, SNRdB: 25, Seed: 51, NA: 4, NC: 2}
	hs, err := rayleighSource(t, o).Next()
	if err != nil {
		t.Fatal(err)
	}
	r := streamReceiver(t, o)
	defer r.Close()
	in := make(chan UplinkFrame, 3)
	out := make(chan FrameOutcome, 3)
	in <- UplinkFrame{Index: 0, Channels: hs}
	in <- UplinkFrame{Index: 1, Channels: hs[:2]} // neither 1 nor 48 matrices
	in <- UplinkFrame{Index: 2, Channels: hs}
	close(in)
	if err := r.ProcessStream(context.Background(), in, out); err != nil {
		t.Fatal(err)
	}
	close(out)
	var got []FrameOutcome
	for fo := range out {
		got = append(got, fo)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d outcomes, want 3", len(got))
	}
	for i, fo := range got {
		if fo.Frame != int64(i) {
			t.Fatalf("outcome %d carries frame %d: delivery must follow submission order", i, fo.Frame)
		}
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("good frames failed: %v / %v", got[0].Err, got[2].Err)
	}
	if !errors.Is(got[1].Err, ErrBadShape) {
		t.Fatalf("bad frame error: %v", got[1].Err)
	}
	if got[1].OK() {
		t.Fatal("errored frame reported OK")
	}
}

func TestProcessStreamCancelled(t *testing.T) {
	o := UplinkOptions{Cons: QPSK, NumSymbols: 2, SNRdB: 25, Seed: 61, NA: 4, NC: 2}
	hs, err := rayleighSource(t, o).Next()
	if err != nil {
		t.Fatal(err)
	}
	r := streamReceiver(t, o)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan UplinkFrame) // never closed: only cancellation can end the stream
	out := make(chan FrameOutcome, 4)
	done := make(chan error, 1)
	go func() { done <- r.ProcessStream(ctx, in, out) }()
	in <- UplinkFrame{Index: 0, Channels: hs}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v", err)
	}
	// The receiver survives: the admitted frame drained, new work runs.
	if _, err := r.ProcessFrame(context.Background(), UplinkFrame{Index: 1, Channels: hs}); err != nil {
		t.Fatalf("receiver unusable after stream cancellation: %v", err)
	}
}

func TestReceiverClosed(t *testing.T) {
	o := UplinkOptions{Cons: QPSK, NumSymbols: 2, SNRdB: 25, Seed: 71, NA: 4, NC: 2}
	hs, err := rayleighSource(t, o).Next()
	if err != nil {
		t.Fatal(err)
	}
	r := streamReceiver(t, o)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.ProcessFrame(context.Background(), UplinkFrame{Index: 0, Channels: hs}); !errors.Is(err, ErrReceiverClosed) {
		t.Fatalf("closed receiver accepted a frame: %v", err)
	}
}

func TestReceiverOptionsValidate(t *testing.T) {
	base := ReceiverOptions{Cons: QPSK, NumSymbols: 2, SNRdB: 25, NA: 4, NC: 2}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*ReceiverOptions)
		want error
	}{
		{"nil cons", func(o *ReceiverOptions) { o.Cons = nil }, ErrNilConstellation},
		{"wide shape", func(o *ReceiverOptions) { o.NA, o.NC = 2, 4 }, ErrBadShape},
		{"bad symbols", func(o *ReceiverOptions) { o.NumSymbols = 0 }, ErrBadNumSymbols},
		{"bad workers", func(o *ReceiverOptions) { o.Workers = -1 }, ErrBadWorkers},
		{"bad queue", func(o *ReceiverOptions) { o.QueueDepth = -1 }, ErrBadQueueDepth},
		{"bad jitter", func(o *ReceiverOptions) { o.SNRJitterDB = -1 }, ErrBadJitter},
	}
	for _, c := range cases {
		o := base
		c.mut(&o)
		if err := o.Validate(); !errors.Is(err, c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, err, c.want)
		}
		if _, err := NewReceiver(o); !errors.Is(err, c.want) {
			t.Fatalf("%s: NewReceiver got %v, want %v", c.name, err, c.want)
		}
	}
}

// TestMeasureUplinkContextCancelled pins the documented cancellation
// contract of the *Context batch variants.
func TestMeasureUplinkContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := UplinkOptions{Cons: QPSK, NumSymbols: 2, Frames: 4, SNRdB: 25, Seed: 81, NA: 4, NC: 2}
	if _, err := MeasureUplinkRayleighContext(ctx, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Rayleigh measurement returned %v", err)
	}
	if _, err := MeasureUplinkTestbedContext(ctx, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled testbed measurement returned %v", err)
	}
}
