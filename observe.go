package geosphere

import (
	"io"
	"time"

	"repro/internal/obs"
)

// Observer receives measurement samples from the detection and link
// pipelines as they run. Implementations must be safe for concurrent
// use (frames are detected in parallel when UplinkOptions.Workers > 1)
// and must not retain sample slices beyond the call — copy what you
// keep. Observing never changes a measurement: results are
// byte-identical with or without an Observer attached.
type Observer = obs.Recorder

// Sample types delivered to an Observer, re-exported so downstream
// implementations never import internal packages.
type (
	// DetectSample describes one sphere-decoder detection; Levels is
	// valid only during the RecordDetect call.
	DetectSample = obs.DetectSample
	// LevelSample is the per-tree-level work of one detection.
	LevelSample = obs.LevelSample
	// DecodeSample describes one per-stream Viterbi decode.
	DecodeSample = obs.DecodeSample
	// FrameSample describes one fully processed frame.
	FrameSample = obs.FrameSample
	// PointSample describes one completed measurement point.
	PointSample = obs.PointSample
)

// StatsObserver is the standard Observer: lock-free counters and
// fixed-bucket histograms aggregating everything recorded, snapshotted
// on demand. Safe for concurrent use; the zero value is not ready —
// use NewStatsObserver.
type StatsObserver = obs.StatsRecorder

// StatsSnapshot is a point-in-time aggregation of a StatsObserver,
// JSON-serializable with the same schema as `geosim -stats json`.
type StatsSnapshot = obs.Snapshot

// NewStatsObserver returns an empty StatsObserver ready to attach to
// UplinkOptions.Observer (or to sim Options via cmd/geosim -stats).
func NewStatsObserver() *StatsObserver { return obs.NewStatsRecorder() }

// NopObserver discards every sample; attaching it is equivalent to a
// nil Observer but lets callers keep an always-non-nil field.
var NopObserver Observer = obs.Nop{}

// MultiObserver fans samples out to several observers in order.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers) }

// NewProgressObserver returns an Observer that prints a heartbeat line
// to w every interval (and a final one on Stop): elapsed time, points,
// frames, detects. Call Stop exactly once when the run ends.
func NewProgressObserver(w io.Writer, interval time.Duration) *obs.Progress {
	return obs.NewProgress(w, interval)
}
