package geosphere

import (
	"repro/internal/ofdm"
)

// OFDM numerology of the 20 MHz 802.11-style PHY (§4).
const (
	// OFDMDataCarriers is the number of data subcarriers per symbol.
	OFDMDataCarriers = ofdm.NumData
	// OFDMSymbolLen is the time-domain OFDM symbol length in samples
	// (64-point FFT plus 16-sample cyclic prefix).
	OFDMSymbolLen = ofdm.SymbolLen
	// OFDMSymbolDuration is the symbol duration in seconds.
	OFDMSymbolDuration = ofdm.SymbolDuration
)

// OFDMModulate assembles one time-domain OFDM symbol (with cyclic
// prefix) from 48 frequency-domain data symbols, using the standard
// pilot polarity.
func OFDMModulate(dst, data []complex128) ([]complex128, error) {
	return ofdm.Modulate(dst, data, ofdm.StandardPilots)
}

// OFDMDemodulate strips the cyclic prefix, FFTs, and extracts the 48
// data subcarriers from one received OFDM symbol.
func OFDMDemodulate(data, samples []complex128) error {
	return ofdm.Demodulate(data, nil, samples)
}

// OFDMPreamble returns the known full-band training symbol used for
// least-squares channel estimation.
func OFDMPreamble() []complex128 { return ofdm.PreambleSymbol() }

// OFDMEstimateChannel least-squares-estimates per-subcarrier scalar
// channels from one received preamble.
func OFDMEstimateChannel(est, rx, ref []complex128) error {
	return ofdm.EstimateChannelLS(est, rx, ref)
}

// FFT computes the in-place radix-2 FFT of x (power-of-two length).
func FFT(x []complex128) error { return ofdm.FFT(x) }

// IFFT computes the in-place inverse FFT of x.
func IFFT(x []complex128) error { return ofdm.IFFT(x) }
