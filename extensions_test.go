package geosphere

import (
	"testing"

	"repro/internal/testbed"
)

func TestFacadeSoftDetector(t *testing.T) {
	src := NewSource(61)
	cons := QAM16
	det := NewListSphereDecoder(cons)
	h := NewRayleighChannel(src, 4, 2)
	if err := det.Prepare(h); err != nil {
		t.Fatal(err)
	}
	x := []complex128{cons.PointIndex(5), cons.PointIndex(11)}
	nv := NoiseVarForSNRdB(20)
	y := Transmit(nil, src, h, x, nv)
	llrs, err := det.DetectSoft(nil, y, nv)
	if err != nil {
		t.Fatal(err)
	}
	if len(llrs) != 2*cons.Bits() {
		t.Fatalf("%d LLRs", len(llrs))
	}
	// At 20 dB every LLR should be decisively signed.
	for i, l := range llrs {
		if l == 0 {
			t.Fatalf("LLR %d exactly zero", i)
		}
	}
}

func TestFacadeHybrid(t *testing.T) {
	cons := QAM16
	hy, err := NewHybrid(cons, NewZF(cons), 5)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(62)
	h := NewRayleighChannel(src, 4, 2)
	if err := hy.Prepare(h); err != nil {
		t.Fatal(err)
	}
	x := []complex128{cons.PointIndex(1), cons.PointIndex(2)}
	y := Transmit(nil, src, h, x, 0)
	got, err := hy.Detect(nil, y)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("hybrid noiseless detection wrong: %v", got)
	}
	if _, err := NewHybrid(cons, nil, 5); err == nil {
		t.Fatal("nil linear accepted")
	}
}

func TestFacadeReordered(t *testing.T) {
	cons := QAM64
	src := NewSource(63)
	plain := NewGeosphere(cons)
	ordered := NewGeosphereReordered(cons)
	for trial := 0; trial < 20; trial++ {
		h := NewRayleighChannel(src, 4, 4)
		x := make([]complex128, 4)
		sent := make([]int, 4)
		for i := range x {
			sent[i] = src.Intn(cons.Size())
			x[i] = cons.PointIndex(sent[i])
		}
		y := Transmit(nil, src, h, x, NoiseVarForSNRdB(30))
		for _, d := range []Detector{plain, ordered} {
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
		}
		a, err := plain.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ordered.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: reordered result differs: %v vs %v", trial, a, b)
			}
		}
	}
}

func TestMeasureUplinkSoft(t *testing.T) {
	res, err := MeasureUplinkRayleigh(UplinkOptions{
		Cons: QAM16, NumSymbols: 4, Frames: 3, SNRdB: 30, Seed: 64, NA: 4, NC: 2,
		Detector: func(cons *Constellation, _ float64) Detector {
			return NewListSphereDecoder(cons)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FER() != 0 {
		t.Fatalf("soft-capable detector failed easy frames: %+v", res)
	}
}

func TestMeasureUplinkTraceHappyPath(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.trace.gz"
	tr, err := testbed.Generate(testbed.OfficePlan(), testbed.GenerateConfig{
		Seed: 77, NumClients: 2, NumAntennas: 4, LinksPerAP: 1, Realizations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	res, err := MeasureUplinkTrace(UplinkOptions{
		Cons: QPSK, NumSymbols: 4, Frames: 2, SNRdB: 30, Seed: 3, NA: 4, NC: 2,
	}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 2 {
		t.Fatalf("ran %d frames", res.Frames)
	}
	// Shape mismatch must be rejected.
	if _, err := MeasureUplinkTrace(UplinkOptions{
		Cons: QPSK, NumSymbols: 4, Frames: 1, NA: 2, NC: 2,
	}, path); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMeasureUplinkWithJitterAndEstimation(t *testing.T) {
	res, err := MeasureUplinkRayleigh(UplinkOptions{
		Cons: QAM16, NumSymbols: 8, Frames: 3, SNRdB: 32, Seed: 21,
		NA: 4, NC: 2, SNRJitterDB: 5, EstimatedCSI: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FER() != 0 {
		t.Fatalf("estimation+jitter at 32 dB failed: %+v", res)
	}
	// Preamble air time must reduce net throughput below the
	// genie-CSI figure for the same format.
	genie, err := MeasureUplinkRayleigh(UplinkOptions{
		Cons: QAM16, NumSymbols: 8, Frames: 3, SNRdB: 32, Seed: 21, NA: 4, NC: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetMbps >= genie.NetMbps {
		t.Fatalf("estimated CSI (%g) should cost air time vs genie (%g)", res.NetMbps, genie.NetMbps)
	}
}
