// Package geosphere is a from-scratch reproduction of "Geosphere:
// Consistently Turning MIMO Capacity into Throughput" (Nikitopoulos,
// Zhou, Congdon, Jamieson — SIGCOMM 2014): an uplink multi-user MIMO
// receiver built around a depth-first sphere decoder whose
// two-dimensional zigzag enumeration and geometrical pruning make
// maximum-likelihood detection practical up to 4×4 MIMO with 256-QAM.
//
// The package is a facade over the internal implementation:
//
//   - Detectors: NewGeosphere (the paper's contribution), NewETHSD
//     (the best prior depth-first sphere decoder), NewZF, NewMMSE,
//     NewMMSESIC (the linear baselines), NewKBest and NewFCSD (the
//     breadth-first related work), and NewML (exhaustive search, for
//     validation).
//   - Channels: NewRayleighChannel draws i.i.d. fading; the
//     cmd/tracegen tool records synthetic indoor-testbed traces.
//   - Metrics: Kappa2dB and LambdaDB quantify how badly zero-forcing
//     will do on a given channel (§5.1).
//
// A minimal detection round trip:
//
//	cons := geosphere.QAM64
//	det := geosphere.NewGeosphere(cons)
//	if err := det.Prepare(h); err != nil { ... }   // h: na×nc channel
//	idx, err := det.Detect(nil, y)                 // y: received vector
//
// Detect returns one constellation-point index per transmit stream;
// cons.PointIndex and cons.SymbolBits map indices back to symbols and
// bits. See examples/ for complete programs, including the full coded
// MIMO-OFDM frame pipeline.
package geosphere

import (
	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/kbest"
	"repro/internal/linear"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/units"
)

// Detector is the common interface of all MIMO detectors: Prepare
// fixes the channel matrix, Detect demultiplexes a received vector
// into one constellation-point index per stream.
type Detector = core.Detector

// StatsOf returns the complexity statistics a detector has accumulated
// since construction (or its last reset), and whether the detector
// counts work at all. Linear detectors (ZF, MMSE, MMSE-SIC) return
// false; every tree-search detector in this package returns true. This
// replaces ad-hoc det.(Counter) type assertions.
func StatsOf(det Detector) (Stats, bool) { return core.StatsOf(det) }

// ResetStatsOf zeroes a detector's complexity statistics, reporting
// whether the detector tracks any. It is StatsOf's write-side
// companion.
func ResetStatsOf(det Detector) bool { return core.ResetStatsOf(det) }

// Stats counts detector work: exact partial-Euclidean-distance
// computations (the paper's §5.3 complexity metric), visited tree
// nodes, geometric bound checks, leaves, and detections.
type Stats = core.Stats

// Constellation is a Gray-mapped square QAM alphabet.
type Constellation = constellation.Constellation

// Matrix is a dense complex channel matrix with na rows (receive
// antennas) and nc columns (transmit streams).
type Matrix = cmplxmat.Matrix

// Source is a deterministic random stream for reproducible simulation.
type Source = rng.Source

// The square QAM constellations of the evaluation.
var (
	QPSK   = constellation.QPSK
	QAM16  = constellation.QAM16
	QAM64  = constellation.QAM64
	QAM256 = constellation.QAM256
	// QAM1024 extends beyond the paper's densest evaluated alphabet;
	// Geosphere's per-node cost stays flat even here (see the
	// BenchmarkDetect1024QAM pair).
	QAM1024 = constellation.QAM1024
)

// ConstellationByBits returns the square QAM alphabet with q bits per
// symbol (q ∈ {2, 4, 6, 8}).
func ConstellationByBits(q int) (*Constellation, error) {
	return constellation.ByBits(q)
}

// NewGeosphere returns the paper's detector: a depth-first
// Schnorr-Euchner sphere decoder with two-dimensional zigzag
// enumeration (§3.1.1) and geometrical pruning (§3.2). It is exactly
// maximum-likelihood.
func NewGeosphere(cons *Constellation) Detector { return core.NewGeosphere(cons) }

// NewGeosphereZigzagOnly returns Geosphere without geometrical
// pruning, the §5.3.2 ablation variant.
func NewGeosphereZigzagOnly(cons *Constellation) Detector {
	return core.NewGeosphereZigzagOnly(cons)
}

// NewETHSD returns the comparison decoder of §5.3: the Burg et al.
// depth-first sphere decoder with Hess et al. row-subconstellation
// enumeration. Exactly maximum-likelihood, but its per-node cost grows
// with √|O|.
func NewETHSD(cons *Constellation) Detector { return core.NewETHSD(cons) }

// NewML returns the exhaustive maximum-likelihood reference detector
// (only practical for small systems).
func NewML(cons *Constellation) Detector { return core.NewML(cons) }

// NewZF returns a zero-forcing detector, the baseline of SAM,
// BigStation, IAC and 802.11n+.
func NewZF(cons *Constellation) Detector { return linear.NewZF(cons) }

// NewMMSE returns a linear MMSE detector for the given total complex
// noise variance per receive antenna.
func NewMMSE(cons *Constellation, noiseVar float64) Detector {
	return linear.NewMMSE(cons, noiseVar)
}

// NewMMSESIC returns the MMSE successive-interference-cancellation
// receiver of §5.2.1, ordered by descending received SNR.
func NewMMSESIC(cons *Constellation, noiseVar float64) Detector {
	return linear.NewMMSESIC(cons, noiseVar)
}

// NewKBest returns a breadth-first K-best decoder keeping k survivors
// per tree level (§6.1 related work).
func NewKBest(cons *Constellation, k int) (Detector, error) {
	return kbest.NewKBest(cons, k)
}

// NewFCSD returns a fixed-complexity sphere decoder that fully expands
// the top fullLevels tree levels (§6.1 related work).
func NewFCSD(cons *Constellation, fullLevels int) (Detector, error) {
	return kbest.NewFCSD(cons, fullLevels)
}

// NewSource returns a deterministic random source.
func NewSource(seed int64) *Source { return rng.New(seed) }

// NewRayleighChannel draws an na×nc channel with independent CN(0,1)
// entries.
func NewRayleighChannel(src *Source, na, nc int) *Matrix {
	return channel.Rayleigh(src, na, nc)
}

// NewCorrelatedChannel draws a Kronecker-correlated Rayleigh channel;
// correlation coefficients near 1 produce the poorly-conditioned
// matrices on which zero-forcing collapses.
func NewCorrelatedChannel(src *Source, na, nc int, rhoRx, rhoTx float64) (*Matrix, error) {
	return channel.Correlated(src, na, nc, rhoRx, rhoTx)
}

// NewConditionedChannel draws a random na×nc channel with the exact
// squared condition number κ² = kappa2dB, the knob behind the adaptive
// scheduler's κ²-swept calibration traces.
func NewConditionedChannel(src *Source, na, nc int, kappa2dB float64) (*Matrix, error) {
	return channel.Conditioned(src, na, nc, units.DB(kappa2dB))
}

// Transmit applies y = H·x + w with CN(0, noiseVar) noise per receive
// antenna, writing into dst (allocated when nil).
func Transmit(dst []complex128, src *Source, h *Matrix, x []complex128, noiseVar float64) []complex128 {
	return channel.Transmit(dst, src, h, x, noiseVar)
}

// DB is a power ratio in decibels: SNRs, condition numbers, losses.
// It aliases the internal units package's typed quantity, so facade
// options carry their domain in the type system (see DESIGN.md §15).
type DB = units.DB

// Linear is a dimensionless linear power ratio (noise variance σ²,
// κ² as a plain ratio); the linear-domain counterpart of DB.
type Linear = units.Linear

// Hertz is a frequency in hertz.
type Hertz = units.Hertz

// NoiseVar converts a per-stream average SNR to the total complex
// noise variance σ² = 10^(−SNRdB/10) under the repository's
// conventions (unit symbol energy, CN(0,1) channel entries).
func NoiseVar(snr DB) Linear {
	return channel.NoiseVar(snr)
}

// NoiseVarForSNRdB is NoiseVar over bare float64s.
func NoiseVarForSNRdB(snrdB float64) float64 {
	return channel.NoiseVarForSNRdB(snrdB)
}

// Kappa2dB returns κ²(H) in decibels, the Figure 9 channel-
// conditioning metric; large values mean zero-forcing will amplify
// noise.
func Kappa2dB(h *Matrix) float64 { return metrics.Kappa2dB(h) }

// LambdaDB returns Λ in decibels: the worst-stream SNR degradation a
// zero-forcing receiver inflicts on the channel (Figure 10).
func LambdaDB(h *Matrix) float64 { return metrics.LambdaDB(h) }

// Symbols maps detected point indices to complex symbols.
func Symbols(cons *Constellation, idx []int) []complex128 {
	return core.SymbolsFromIndices(cons, idx)
}
